// Command lunule-sim runs a single simulated CephFS metadata cluster
// with a chosen workload and balancer and prints its dynamics: per-MDS
// throughput, imbalance-factor series, migration counts, and job
// completion times.
//
//	lunule-sim -workload zipf -balancer lunule -mds 5 -clients 40
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/cluster"
	"repro/internal/experiment"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/workload"
)

func main() {
	var (
		wl        = flag.String("workload", "Zipf", "workload: CNN, NLP, Web, Zipf, MD, Mixed")
		bal       = flag.String("balancer", "Lunule", "balancer: Vanilla, GreedySpill, Lunule-Light, Lunule, Dir-Hash")
		mdsN      = flag.Int("mds", 5, "number of metadata servers")
		clients   = flag.Int("clients", 40, "number of clients")
		rate      = flag.Float64("rate", 150, "client op rate (ops per second)")
		capacity  = flag.Int("capacity", 2000, "per-MDS capacity (ops per second)")
		scale     = flag.Float64("scale", 1.0, "workload scale factor")
		seed      = flag.Uint64("seed", 42, "random seed")
		ticks     = flag.Int64("maxticks", 6000, "simulated-tick budget")
		data      = flag.Bool("data", false, "enable the OSD data path")
		csvPath   = flag.String("csv", "", "write per-tick series to this CSV file")
		ifCSV     = flag.String("ifcsv", "", "write the per-epoch imbalance series to this CSV file")
		traceFile = flag.String("tracefile", "", "replay this op trace instead of a synthetic workload (see lunule-trace -export)")
		pins      = flag.String("pin", "", "comma-separated static subtree pins, e.g. /zipf/client000=1,/web=2 (ceph.dir.pin)")
		crashes   = flag.String("crash", "", "comma-separated MDS crashes as tick:rank (rank 'hot' = hottest live rank), e.g. 100:1,400:hot")
		recovers  = flag.String("recover", "", "comma-separated MDS recoveries as tick:rank, e.g. 300:1")
		mtbf      = flag.Float64("mtbf", 0, "random failures: mean ticks between failures per rank (0 = off)")
		mttr      = flag.Float64("mttr", 0, "random failures: mean ticks to repair (default mtbf/10)")
		recoveryT = flag.Int("recoveryticks", 0, "failover takeover latency window in ticks (default 20)")
	)
	flag.Parse()

	name := canonical(*wl)
	var gen workload.Generator
	nClients := *clients
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			os.Exit(1)
		}
		tf, err := workload.ParseTrace(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			os.Exit(1)
		}
		gen = tf
		nClients = tf.Clients()
		name = "Trace(" + *traceFile + ")"
	} else {
		gen = experiment.MakeWorkload(name, *scale)
	}
	faults, err := buildFaults(*crashes, *recovers, *mtbf, *mttr, *mdsN, *ticks, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "error: %v\n", err)
		os.Exit(1)
	}
	c, err := cluster.New(cluster.Config{
		MDS:           *mdsN,
		Capacity:      *capacity,
		Clients:       nClients,
		ClientRate:    *rate,
		DataPath:      *data,
		Seed:          *seed,
		Balancer:      experiment.MakeBalancer(canonicalBalancer(*bal)),
		Workload:      gen,
		RecoveryTicks: *recoveryT,
		Faults:        faults,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "error: %v\n", err)
		os.Exit(1)
	}
	if *pins != "" {
		for _, spec := range strings.Split(*pins, ",") {
			parts := strings.SplitN(strings.TrimSpace(spec), "=", 2)
			if len(parts) != 2 {
				fmt.Fprintf(os.Stderr, "error: bad pin %q (want path=rank)\n", spec)
				os.Exit(1)
			}
			rank, err := strconv.Atoi(parts[1])
			if err != nil {
				fmt.Fprintf(os.Stderr, "error: bad pin rank %q\n", parts[1])
				os.Exit(1)
			}
			if err := c.PinPath(parts[0], rank); err != nil {
				fmt.Fprintf(os.Stderr, "error: %v\n", err)
				os.Exit(1)
			}
		}
	}
	end := c.RunUntilDone(*ticks)
	rec := c.Metrics()

	fmt.Printf("workload=%s balancer=%s mds=%d clients=%d ended at tick %d (all done: %v)\n\n",
		name, *bal, *mdsN, nClients, end, c.Done())
	tbl := &metrics.Table{Header: []string{"metric", "value"}}
	tbl.Add("mean imbalance factor", fmt.Sprintf("%.3f", rec.MeanIF()))
	tbl.Add("peak aggregate IOPS", fmt.Sprintf("%.0f", rec.PeakThroughput(10)))
	tbl.Add("mean aggregate IOPS", fmt.Sprintf("%.0f", rec.MeanThroughput()))
	tbl.Add("migrated inodes", fmt.Sprintf("%.0f", rec.MigratedTotal()))
	tbl.Add("inter-MDS forwards", fmt.Sprintf("%.0f", rec.ForwardsTotal()))
	tbl.Add("op latency mean / p99 (ticks)", fmt.Sprintf("%.2f / %.0f", rec.MeanLatency(), rec.LatencyQuantile(0.99)))
	tbl.Add("JCT p50 / p99 (ticks)", fmt.Sprintf("%.0f / %.0f", rec.JCTQuantile(0.5), rec.JCTQuantile(0.99)))
	tbl.Add("subtree entries", fmt.Sprintf("%d", c.Partition().NumEntries()))
	if faults != nil && !faults.Empty() {
		var retries, crashN int64
		for _, cl := range c.Clients() {
			retries += cl.Retries()
		}
		for _, s := range c.Servers() {
			crashN += s.Crashes()
		}
		tbl.Add("MDS crashes", fmt.Sprintf("%d", crashN))
		tbl.Add("ops stalled on down ranks", fmt.Sprintf("%.0f", rec.StalledDownTotal()))
		tbl.Add("exports aborted by crashes", fmt.Sprintf("%.0f", rec.AbortedTotal()))
		tbl.Add("client retries (backoff)", fmt.Sprintf("%d", retries))
		tbl.Add("orphaned rank-ticks", fmt.Sprintf("%.0f", rec.RecoveryTicksTotal()))
		tbl.Add("mean ticks to reassign", fmt.Sprintf("%.1f", rec.MeanTicksToReassign()))
		if down := c.DownRanks(); len(down) > 0 {
			tbl.Add("still down at end", fmt.Sprint(down))
		}
	}
	fmt.Print(tbl.String())

	fmt.Println("\nimbalance factor over time:")
	fmt.Printf("  %s  %s\n", metrics.Sparkline(&rec.IF, 40), metrics.FormatSeries(&rec.IF, 8))
	fmt.Println("per-MDS IOPS over time (shared scale):")
	maxIOPS := 0.0
	for _, s := range rec.PerMDS {
		if m := s.MaxValue(); m > maxIOPS {
			maxIOPS = m
		}
	}
	for i, s := range rec.PerMDS {
		fmt.Printf("  MDS-%d %s  %s\n", i+1,
			metrics.SparklineScaled(s, 40, maxIOPS), metrics.FormatSeries(s, 8))
	}
	fmt.Println("aggregate IOPS over time:")
	fmt.Printf("  %s\n", metrics.Sparkline(&rec.Agg, 40))

	if *csvPath != "" {
		if err := writeCSV(*csvPath, rec.WriteCSV); err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nper-tick series written to %s\n", *csvPath)
	}
	if *ifCSV != "" {
		if err := writeCSV(*ifCSV, rec.WriteEpochCSV); err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("imbalance series written to %s\n", *ifCSV)
	}
}

// buildFaults combines the scripted -crash/-recover specs with the
// random -mtbf mode into one validated schedule (nil when no fault
// flags were given).
func buildFaults(crashes, recovers string, mtbf, mttr float64, mdsN int, horizon int64, seed uint64) (*fault.Schedule, error) {
	sched, err := fault.ParseSpecs(crashes, fault.Crash)
	if err != nil {
		return nil, err
	}
	recs, err := fault.ParseSpecs(recovers, fault.Recover)
	if err != nil {
		return nil, err
	}
	sched.Merge(recs)
	if mtbf > 0 {
		sched.Merge(fault.MTBF(fault.MTBFConfig{
			Ranks:   mdsN,
			MTBF:    mtbf,
			MTTR:    mttr,
			Horizon: horizon,
		}, rng.New(seed).Fork(99)))
	}
	if sched.Empty() {
		return nil, nil
	}
	if err := sched.Validate(mdsN); err != nil {
		return nil, err
	}
	return &sched, nil
}

func writeCSV(path string, emit func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := emit(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func canonical(w string) string {
	switch strings.ToLower(w) {
	case "cnn":
		return "CNN"
	case "nlp":
		return "NLP"
	case "web":
		return "Web"
	case "zipf":
		return "Zipf"
	case "md", "mdtest":
		return "MD"
	case "mixed":
		return "Mixed"
	default:
		return w
	}
}

func canonicalBalancer(b string) string {
	switch strings.ToLower(b) {
	case "vanilla", "cephfs", "cephfs-vanilla":
		return "Vanilla"
	case "greedyspill", "greedy":
		return "GreedySpill"
	case "lunule-light", "light":
		return "Lunule-Light"
	case "lunule":
		return "Lunule"
	case "dir-hash", "dirhash", "hash":
		return "Dir-Hash"
	default:
		return b
	}
}
