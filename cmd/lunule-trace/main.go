// Command lunule-trace analyzes a workload's operation stream the way
// the pattern analyzer sees it: op-kind mix, metadata ratio, and the
// per-window locality signature (recurrent-visit ratio alpha,
// first-visit ratio beta) of the whole stream. Use it to understand
// why a workload favours temporal- or spatial-locality balancing
// before running full simulations.
//
//	lunule-trace -workload cnn
//	lunule-trace -workload zipf -clients 4 -windowops 2000
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiment"
	"repro/internal/metrics"
	"repro/internal/namespace"
	"repro/internal/rng"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		wl        = flag.String("workload", "Zipf", "workload: CNN, NLP, Web, Zipf, MD, Mixed")
		clients   = flag.Int("clients", 4, "number of client streams to interleave")
		scale     = flag.Float64("scale", 1.0, "workload scale factor")
		seed      = flag.Uint64("seed", 42, "random seed")
		windowOps = flag.Int("windowops", 4000, "accesses per cutting window")
		windows   = flag.Int("windows", 12, "number of windows to report")
		export    = flag.String("export", "", "write the workload's op streams to this trace file and exit (replayable via lunule-sim -tracefile)")
	)
	flag.Parse()

	gen := experiment.MakeWorkload(canonical(*wl), *scale)
	tree := namespace.NewTree()
	specs, err := gen.Setup(tree, *clients, rng.New(*seed))
	if err != nil {
		fmt.Fprintf(os.Stderr, "error: %v\n", err)
		os.Exit(1)
	}

	if *export != "" {
		f, err := os.Create(*export)
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			os.Exit(1)
		}
		if err := workload.WriteTrace(f, specs); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("trace written to %s (%d clients)\n", *export, *clients)
		return
	}

	// Interleave the client streams round-robin, the way concurrent
	// clients hit the metadata service.
	streams := make([]workload.Stream, len(specs))
	for i, sp := range specs {
		streams[i] = sp.Stream
	}

	col := trace.NewCollector(*windows + 1)
	rootKey := namespace.FragKey{Dir: namespace.RootIno, Frag: namespace.WholeFrag}

	kinds := map[workload.OpKind]int{}
	meta, data := 0, 0
	epoch := int64(0)
	inWindow := 0
	type sig struct{ alpha, beta float64 }
	var sigs []sig
	live := len(streams)

	flush := func() {
		c := col.RecentKey(rootKey, epoch, 1)
		var s sig
		if c.Distinct > 0 {
			s.alpha = float64(c.Recurrent) / float64(c.Distinct)
		}
		if c.Visits > 0 {
			s.beta = float64(c.FirstVisits) / float64(c.Visits)
		}
		sigs = append(sigs, s)
	}

	for live > 0 && len(sigs) < *windows {
		live = 0
		for _, s := range streams {
			op, ok := s.Next()
			if !ok {
				continue
			}
			live++
			kinds[op.Kind]++
			meta++
			if op.DataSize > 0 {
				data++
			}
			target := op.Target
			if op.Kind == workload.OpCreate {
				target = op.Parent.Child(op.Name)
				if target == nil {
					target, err = tree.Create(op.Parent, op.Name, op.Size)
					if err != nil {
						continue
					}
				}
			}
			col.Record(rootKey, target, epoch)
			inWindow++
			if inWindow >= *windowOps {
				flush()
				inWindow = 0
				epoch++
			}
		}
	}
	if inWindow > 0 && len(sigs) < *windows {
		flush()
	}

	fmt.Printf("workload %s, %d clients, %d ops analyzed\n\n", gen.Name(), *clients, meta)
	tbl := &metrics.Table{Header: []string{"op kind", "count", "share"}}
	for _, k := range []workload.OpKind{
		workload.OpLookup, workload.OpGetattr, workload.OpOpen,
		workload.OpReaddir, workload.OpCreate,
	} {
		if kinds[k] == 0 {
			continue
		}
		tbl.Add(k.String(), fmt.Sprint(kinds[k]),
			fmt.Sprintf("%.1f%%", 100*float64(kinds[k])/float64(meta)))
	}
	fmt.Print(tbl.String())
	fmt.Printf("\nmetadata-op ratio: %.3f (meta %d / data %d)\n\n",
		float64(meta)/float64(meta+data), meta, data)

	fmt.Printf("locality signature per window (%d ops each):\n", *windowOps)
	fmt.Printf("%-8s %-22s %-22s\n", "window", "alpha (recurrent)", "beta (first-visit)")
	for i, s := range sigs {
		fmt.Printf("%-8d %-22s %-22s\n", i,
			bar(s.alpha)+fmt.Sprintf(" %.2f", s.alpha),
			bar(s.beta)+fmt.Sprintf(" %.2f", s.beta))
	}
	fmt.Println("\nhigh alpha -> temporal locality (heat-based balancing works);")
	fmt.Println("high beta  -> spatial locality (scans/creates; Lunule's mIndex needed)")
}

func bar(v float64) string {
	n := int(v * 12)
	if n < 0 {
		n = 0
	}
	if n > 12 {
		n = 12
	}
	out := make([]byte, 12)
	for i := range out {
		if i < n {
			out[i] = '#'
		} else {
			out[i] = '.'
		}
	}
	return string(out)
}

func canonical(w string) string {
	switch w {
	case "cnn", "CNN":
		return "CNN"
	case "nlp", "NLP":
		return "NLP"
	case "web", "Web":
		return "Web"
	case "zipf", "Zipf":
		return "Zipf"
	case "md", "MD":
		return "MD"
	case "mixed", "Mixed":
		return "Mixed"
	default:
		return w
	}
}
